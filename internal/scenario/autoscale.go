package scenario

import (
	"sort"

	"locallab/internal/engine"
	"locallab/internal/measure"
	"locallab/internal/twin"
)

// autoscalePlan is the twin-derived schedule for one scenario grid: how
// many grid workers fan the cells, how many engine workers each cell
// runs with, the dispatch order, and the pre-sizing hints. Plans change
// scheduling only — every report byte is pinned identical to the static
// split by the engine's geometry-independence invariant (and by the
// autoscale byte-identity test).
type autoscalePlan struct {
	// GridWorkers is the chosen width of the grid layer.
	GridWorkers int
	// EngineWorkers[i] is cell i's engine worker count (1 for cells the
	// twin cannot predict, and for non-engine solvers).
	EngineWorkers []int
	// Order dispatches predicted-heavy cells first (LPT heuristic); nil
	// when the grid runs sequentially.
	Order []int
	// Hints[i] pre-sizes cell i's session (nil when unpredicted).
	Hints []*engine.SizeHint
}

// planAutoscale splits a total worker budget between the grid and
// engine layers of one scenario. The twin prices every cell at every
// candidate split; the plan picks the grid width g minimizing the
// standard makespan lower bound max(Σ wall_i / g, max_i wall_i), with
// each cell's engine workers capped at its twin-optimal count and at
// the per-grid-slot share budget/g. Cells the twin has no model for
// keep the static split (one engine worker) — autoscaling degrades to
// the default, it never guesses.
//
// A scenario that pins engine.workers in its spec keeps that pin: the
// spec author's explicit request outranks the twin, and only the grid
// width around it is adapted.
func planAutoscale(sc *Scenario, engineAware bool, engineParams EngineParams, tw *twin.Twin, budget int, grid []measure.CellSpec) autoscalePlan {
	if budget < 1 {
		budget = 1
	}
	n := len(grid)
	plan := autoscalePlan{
		GridWorkers:   budget,
		EngineWorkers: make([]int, n),
		Hints:         make([]*engine.SizeHint, n),
	}
	// Desired engine workers per cell, ignoring the grid share for now.
	desired := make([]int, n)
	predicted := make([]bool, n)
	for i, c := range grid {
		desired[i] = 1
		p, ok := tw.Predict(sc.Family, sc.Solver, c.N, 1, engineParams.Shards)
		if !ok {
			continue
		}
		predicted[i] = true
		if engineAware {
			plan.Hints[i] = &engine.SizeHint{Rounds: p.Rounds, Deliveries: p.Deliveries}
			if engineParams.Workers > 0 {
				desired[i] = engineParams.Workers
			} else {
				desired[i] = tw.OptimalWorkers(sc.Family, sc.Solver, c.N, budget)
			}
		}
	}
	// wallAt prices cell i at w engine workers; unpredicted cells get
	// unit weight so they still spread across the grid.
	wallAt := func(i, w int) float64 {
		if !predicted[i] {
			return 1
		}
		p, _ := tw.Predict(sc.Family, sc.Solver, grid[i].N, w, engineParams.Shards)
		return float64(p.WallNs)
	}
	bestG, bestSpan := budget, 0.0
	for g := 1; g <= budget; g++ {
		share := budget / g
		if share < 1 {
			share = 1
		}
		var sum, maxw float64
		for i := range grid {
			e := desired[i]
			if e > share {
				e = share
			}
			w := wallAt(i, e)
			sum = sum + w
			if w > maxw {
				maxw = w
			}
		}
		span := sum / float64(g)
		if maxw > span {
			span = maxw
		}
		// Ties go to the wider grid: more slots pack small cells better
		// than the estimate can see.
		if g == 1 || span <= bestSpan {
			bestG, bestSpan = g, span
		}
	}
	plan.GridWorkers = bestG
	share := budget / bestG
	if share < 1 {
		share = 1
	}
	final := make([]float64, n)
	for i := range grid {
		e := desired[i]
		if e > share {
			e = share
		}
		plan.EngineWorkers[i] = e
		final[i] = wallAt(i, e)
	}
	if bestG > 1 {
		plan.Order = make([]int, n)
		for i := range plan.Order {
			plan.Order[i] = i
		}
		sort.SliceStable(plan.Order, func(a, b int) bool {
			return final[plan.Order[a]] > final[plan.Order[b]]
		})
	}
	return plan
}
