package scenario

import (
	"fmt"

	"locallab/internal/engine"
	"locallab/internal/solver"
)

// CellRequest names one grid cell — the unit of work the serving layer
// accepts: a (family, solver, n, seed) point plus engine parameters.
// It is validated against the same registries and with the same tested
// error-message bodies as a scenario spec, just prefixed "cell".
type CellRequest struct {
	Family string       `json:"family"`
	Solver string       `json:"solver"`
	N      int          `json:"n"`
	Seed   int64        `json:"seed"`
	Engine EngineParams `json:"engine,omitzero"`
}

// scenario wraps the request into a one-cell scenario so validation and
// grid semantics stay single-sourced.
func (c *CellRequest) scenario() *Scenario {
	return &Scenario{
		Name:   "cell",
		Family: c.Family,
		Solver: c.Solver,
		Sizes:  []int{c.N},
		Seeds:  []int64{c.Seed},
		Engine: c.Engine,
	}
}

// Validate checks the request against the family and solver registries.
// Error messages are part of the contract (the serving handler returns
// them verbatim and tests assert them exactly).
func (c *CellRequest) Validate() error {
	if c.Solver == "" {
		return fmt.Errorf("cell: missing solver")
	}
	if c.Family == "" {
		return fmt.Errorf("cell: missing family")
	}
	return c.scenario().validateAs("cell")
}

// CellRunner is a prepared cell: the graph (or padded instance) and any
// reusable solver session are built once at construction, and every Run
// re-executes the solve on that pinned instance. Runs are deterministic —
// repeated Run calls return identical results, byte-for-byte the same
// CellResult a fresh lcl-scenario run of the cell would report — which is
// what lets the serving layer pool runners across requests. A CellRunner
// is not safe for concurrent use; Close releases pinned resources.
type CellRunner struct {
	req  CellRequest
	prep solver.Prepared
}

// NewRunner validates the request and prepares its instance. The engine
// is constructed exactly like runScenario's: engine-aware solvers get an
// explicit engine with workers defaulting to 1, so pooled results never
// depend on mutable package-level engine defaults.
func NewRunner(req CellRequest) (*CellRunner, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sol, _ := SolverByName(req.Solver)
	var eng *engine.Engine
	if sol.EngineAware {
		w := req.Engine.Workers
		if w <= 0 {
			w = 1
		}
		eng = engine.New(engine.Options{Workers: w, Shards: req.Engine.Shards})
	}
	prep, err := sol.Prepare(solver.Request{Family: req.Family, N: req.N, Seed: req.Seed, Engine: eng})
	if err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	return &CellRunner{req: req, prep: prep}, nil
}

// Request returns the cell the runner was prepared for.
func (r *CellRunner) Request() CellRequest { return r.req }

// Run executes the prepared cell and maps the outcome to the report
// schema's CellResult — the same mapping runScenario uses, so a served
// cell fragment is byte-identical to the lcl-scenario report cell.
func (r *CellRunner) Run() (*CellResult, error) {
	o, err := r.prep.Run()
	if err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	res := newCellResult(r.req.N, r.req.Seed, o)
	return &res, nil
}

// Close releases the prepared instance. The runner must not be used
// after.
func (r *CellRunner) Close() { r.prep.Close() }

// RunCell is the one-shot form: validate, prepare, run once, release.
func RunCell(req CellRequest) (*CellResult, error) {
	r, err := NewRunner(req)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Run()
}

// newCellResult maps a solver outcome to the report cell schema. Both
// runScenario and CellRunner.Run go through it, which is what pins the
// served-vs-scenario byte-identity contract to one place.
func newCellResult(n int, seed int64, o *solver.Outcome) CellResult {
	return CellResult{
		N:          n,
		Seed:       seed,
		Nodes:      o.Nodes,
		Edges:      o.Edges,
		Rounds:     o.Rounds,
		Messages:   o.Stats.Deliveries,
		RelayWords: o.RelayWords,
		TowerDepth: o.TowerDepth,
		Checksum:   fmt.Sprintf("%016x", o.Checksum),
	}
}
