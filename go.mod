module locallab

go 1.24
