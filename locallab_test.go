package locallab_test

import (
	"fmt"
	"testing"

	"locallab"
)

// TestFacadeQuickstart exercises the documented public-API happy path.
func TestFacadeQuickstart(t *testing.T) {
	g, err := locallab.NewRandomRegular(128, 3, 42, false)
	if err != nil {
		t.Fatal(err)
	}
	in := locallab.NewLabeling(g)
	for _, s := range []locallab.Solver{locallab.NewSinklessDetSolver(), locallab.NewSinklessRandSolver()} {
		out, cost, err := s.Solve(g, in, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := locallab.Verify(g, locallab.SinklessOrientation(), in, out); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if cost.Rounds() < 1 {
			t.Errorf("%s: rounds = %d", s.Name(), cost.Rounds())
		}
	}
}

func TestFacadeColoring(t *testing.T) {
	g, err := locallab.NewCycle(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := locallab.NewLabeling(g)
	out, _, err := locallab.NewColeVishkinSolver().Solve(g, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := locallab.Verify(g, locallab.ThreeColoringCycles(), in, out); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGadgetAndPadding(t *testing.T) {
	gd, err := locallab.NewGadget(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := locallab.ValidateGadget(gd.G, gd.In, 3); err != nil {
		t.Fatal(err)
	}
	base, err := locallab.NewRandomRegular(8, 3, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := locallab.NewPadded(base, locallab.NewLabeling(base), locallab.PadOptions{Delta: 3, GadgetHeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := locallab.NewHierarchyLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := lvl.Det.Solve(pi.G, pi.In, 0)
	if err != nil {
		t.Fatal(err)
	}
	prime, ok := lvl.Problem.(*locallab.PiPrime)
	if !ok {
		t.Fatal("level-2 problem is not a PiPrime")
	}
	if err := locallab.VerifyPadded(pi.G, prime, pi.In, out); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMeasurement(t *testing.T) {
	s, err := locallab.Sweep("demo", []int{64, 256}, 1, func(n int, seed int64) (int, error) {
		g, err := locallab.NewRandomRegular(n, 3, seed, false)
		if err != nil {
			return 0, err
		}
		in := locallab.NewLabeling(g)
		_, cost, err := locallab.NewSinklessDetSolver().Solve(g, in, 0)
		if err != nil {
			return 0, err
		}
		return cost.Rounds(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fits := locallab.BestFit(s.Points)
	if len(fits) == 0 {
		t.Fatal("no fits")
	}
}

// ExampleVerify demonstrates the documented quickstart flow; its output
// is checked by go test.
func ExampleVerify() {
	g, err := locallab.NewRandomRegular(64, 3, 42, false)
	if err != nil {
		fmt.Println(err)
		return
	}
	in := locallab.NewLabeling(g)
	out, _, err := locallab.NewSinklessDetSolver().Solve(g, in, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(locallab.Verify(g, locallab.SinklessOrientation(), in, out))
	// Output: <nil>
}

// ExampleNewGadget shows gadget construction and validation.
func ExampleNewGadget() {
	gd, err := locallab.NewGadget(3, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(gd.NumNodes(), locallab.ValidateGadget(gd.G, gd.In, 3))
	// Output: 46 <nil>
}
