// Sinklessfarm: sweep sinkless orientation over growing random 3-regular
// graphs and watch the deterministic Θ(log n) curve separate from the
// randomized Θ(log log n)-shaped curve — the left-most separation in the
// paper's Figure 1.
package main

import (
	"fmt"
	"os"

	"locallab/internal/graph"
	"locallab/internal/lcl"
	"locallab/internal/measure"
	"locallab/internal/sinkless"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sinklessfarm:", err)
		os.Exit(1)
	}
}

func run() error {
	sizes := []int{128, 512, 2048, 8192}
	det, err := measure.Sweep("deterministic", sizes, 3, func(n int, seed int64) (int, error) {
		return solve(sinkless.NewDetSolver(), n, seed)
	})
	if err != nil {
		return err
	}
	rnd, err := measure.Sweep("randomized", sizes, 3, func(n int, seed int64) (int, error) {
		return solve(sinkless.NewRandSolver(), n, seed)
	})
	if err != nil {
		return err
	}

	rows := make([][]string, len(sizes))
	for i, n := range sizes {
		rows[i] = []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.1f", det.Points[i].Rounds),
			fmt.Sprintf("%.1f", rnd.Points[i].Rounds),
			fmt.Sprintf("%.1f", det.Points[i].Rounds/rnd.Points[i].Rounds),
		}
	}
	fmt.Println(measure.Table([]string{"n", "det rounds", "rand rounds", "D/R"}, rows))
	fmt.Printf("det best fit:  %s\n", measure.BestFit(det.Points)[0].Model.Name)
	fmt.Printf("rand best fit: %s\n", measure.BestFit(rnd.Points)[0].Model.Name)
	return nil
}

func solve(s lcl.Solver, n int, seed int64) (int, error) {
	g, err := graph.NewRandomRegular(n, 3, seed, false)
	if err != nil {
		return 0, err
	}
	in := lcl.NewLabeling(g)
	out, cost, err := s.Solve(g, in, seed+1)
	if err != nil {
		return 0, err
	}
	if err := lcl.Verify(g, sinkless.Problem{}, in, out); err != nil {
		return 0, err
	}
	return cost.Rounds(), nil
}
