// Decomposer: build a deterministic (O(log n), O(log n)) network
// decomposition — the object the paper's discussion section connects to
// its open question — and inspect the cluster structure.
package main

import (
	"fmt"
	"os"

	"locallab/internal/graph"
	"locallab/internal/measure"
	"locallab/internal/netdecomp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "decomposer:", err)
		os.Exit(1)
	}
}

func run() error {
	var rows [][]string
	for _, n := range []int{256, 1024, 4096} {
		g, err := graph.NewRandomRegular(n, 3, int64(n), false)
		if err != nil {
			return err
		}
		dec, cost, err := netdecomp.Build(g, netdecomp.Options{})
		if err != nil {
			return err
		}
		if err := netdecomp.Verify(g, dec); err != nil {
			return fmt.Errorf("n=%d: %w", n, err)
		}
		clusters := make(map[int]int)
		largest := 0
		for _, c := range dec.Cluster {
			clusters[c]++
			if clusters[c] > largest {
				largest = clusters[c]
			}
		}
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(clusters)), fmt.Sprint(largest),
			fmt.Sprint(dec.Colors), fmt.Sprint(dec.Radius), fmt.Sprint(cost.Rounds()),
		})
	}
	fmt.Println(measure.Table(
		[]string{"n", "clusters", "largest cluster", "colors", "radius", "rounds"}, rows))
	fmt.Println("colors and radius stay O(log n): the ND(n) term in the paper's")
	fmt.Println("discussion-section derandomization bound D = O(R·ND + R·log² n).")
	return nil
}
