// Decomposer: build a deterministic (O(log n), O(log n)) network
// decomposition — the object the paper's discussion section connects to
// its open question — through the unified solver registry, and inspect
// the cluster structure of the underlying decomposition.
package main

import (
	"fmt"
	"io"
	"os"

	"locallab/internal/measure"
	"locallab/internal/solver"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "decomposer:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	entry, ok := solver.ByName("netdecomp")
	if !ok {
		return fmt.Errorf("netdecomp missing from the solver registry")
	}
	var rows [][]string
	for _, n := range []int{256, 1024, 4096} {
		// The registry entry builds, solves, and verifies the cell and
		// hands back the verified decomposition for inspection.
		o, err := entry.Run(solver.Request{Family: "regular", N: n, Seed: int64(n)})
		if err != nil {
			return err
		}
		dec := o.Decomposition
		clusters := make(map[int]int)
		largest := 0
		for _, c := range dec.Cluster {
			clusters[c]++
			if clusters[c] > largest {
				largest = clusters[c]
			}
		}
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(len(clusters)), fmt.Sprint(largest),
			fmt.Sprint(dec.Colors), fmt.Sprint(dec.Radius), fmt.Sprint(o.Rounds),
		})
	}
	fmt.Fprintln(w, measure.Table(
		[]string{"n", "clusters", "largest cluster", "colors", "radius", "rounds"}, rows))
	fmt.Fprintln(w, "colors and radius stay O(log n): the ND(n) term in the paper's")
	fmt.Fprintln(w, "discussion-section derandomization bound D = O(R·ND + R·log² n).")
	return nil
}
