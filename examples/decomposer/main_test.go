package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden output")

// TestDecomposerGolden is the example's smoke test: the registry-backed
// network-decomposition sweep completes and prints byte-identical output
// across runs (the decomposition is deterministic per instance seed).
func TestDecomposerGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "output.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./examples/decomposer -update)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("output differs from golden %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}
