// Quickstart: solve sinkless orientation — the base problem of the
// paper's hierarchy — on a random 3-regular graph with both the
// deterministic and the randomized solver, verify the solutions with the
// ne-LCL checker, and compare the measured locality.
package main

import (
	"fmt"
	"os"

	"locallab/internal/graph"
	"locallab/internal/lcl"
	"locallab/internal/sinkless"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 512
	g, err := graph.NewRandomRegular(n, 3, 42, false)
	if err != nil {
		return err
	}
	in := lcl.NewLabeling(g)
	fmt.Printf("instance: random 3-regular multigraph, n=%d, m=%d\n\n", g.NumNodes(), g.NumEdges())

	for _, solver := range []lcl.Solver{sinkless.NewDetSolver(), sinkless.NewRandSolver()} {
		out, cost, err := solver.Solve(g, in, 7)
		if err != nil {
			return fmt.Errorf("%s: %w", solver.Name(), err)
		}
		if err := lcl.Verify(g, sinkless.Problem{}, in, out); err != nil {
			return fmt.Errorf("%s produced an invalid orientation: %w", solver.Name(), err)
		}
		minOut := g.NumEdges()
		for _, d := range sinkless.OutDegrees(g, out) {
			if d < minOut {
				minOut = d
			}
		}
		fmt.Printf("%-28s rounds=%-4d min out-degree=%d (verified: no sinks)\n",
			solver.Name(), cost.Rounds(), minOut)
	}
	fmt.Println("\nthe randomized solver needs far fewer rounds — the exponential")
	fmt.Println("det/rand gap that the paper's padding construction stretches into")
	fmt.Println("a polynomial one (see examples/paddedtower).")
	return nil
}
