// Errorclinic: corrupt gadgets in every standard way and watch the
// Section-4 machinery respond — the local structure checker spots the
// violation, the verifier V builds locally checkable error-pointer chains
// (Lemma 10), and the Section-4.6 proof objects certify specific
// violation types in the node-edge formalism.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"locallab/internal/errorproof"
	"locallab/internal/gadget"
	"locallab/internal/lcl"
	"locallab/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "errorclinic:", err)
		os.Exit(1)
	}
}

func run() error {
	gd, err := gadget.BuildUniform(3, 5)
	if err != nil {
		return err
	}
	fmt.Println("patient:", gd.Describe())
	fmt.Println()

	var rows [][]string
	rng := rand.New(rand.NewSource(17))
	for _, c := range gadget.StandardCorruptions(gd, rng) {
		g, in, err := c.Apply(gd)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		structBroken := gadget.Validate(g, in, 3) != nil

		vf := &errorproof.Verifier{Delta: 3}
		out, cost, err := vf.Run(g, in, g.NumNodes())
		if err != nil {
			return err
		}
		errors, pointers := 0, 0
		for _, l := range out.Node {
			switch {
			case l == errorproof.LabError:
				errors++
			case errorproof.IsErrorLabel(l):
				pointers++
			}
		}
		chainsOK := lcl.Verify(g, &errorproof.Psi{Delta: 3}, in, out) == nil
		rows = append(rows, []string{
			c.Name, fmt.Sprint(structBroken), fmt.Sprint(errors), fmt.Sprint(pointers),
			fmt.Sprint(cost.Rounds()), fmt.Sprint(chainsOK),
		})
	}
	fmt.Println(measure.Table(
		[]string{"corruption", "detected", "Error nodes", "pointer nodes", "V rounds", "chains valid"}, rows))

	// The healthy control: V must certify the original gadget whole.
	vf := &errorproof.Verifier{Delta: 3}
	out, _, err := vf.Run(gd.G, gd.In, gd.NumNodes())
	if err != nil {
		return err
	}
	for v, l := range out.Node {
		if l != errorproof.LabGadOk {
			return fmt.Errorf("healthy gadget: node %d labeled %q", v, l)
		}
	}
	fmt.Println("\ncontrol: on the unmodified gadget V outputs GadOk everywhere (Lemma 9: no false proofs possible)")
	return nil
}
