package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden output")

// TestPaddedTowerGolden is the example's smoke test: the full registry-
// backed Π₂/Π₃ run completes, and its output — instance shape, cost
// decomposition, measured engine rounds and deliveries — is byte-
// identical to the checked-in golden (everything printed is
// deterministic, including the engine stats).
func TestPaddedTowerGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "output.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./examples/paddedtower -update)", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("output differs from golden %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}
