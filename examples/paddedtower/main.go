// Paddedtower: run the paper's headline objects — the padded problems
// Π₂ and Π₃ of Theorem 11 — through the unified solver registry
// (internal/solver): the Lemma-4 pipeline executes as message-passing
// machines on the sharded engine, and the table shows the Theorem-1 cost
// decomposition T(Π, √N)·d(√N) next to the rounds actually measured on
// the engine.
package main

import (
	"fmt"
	"io"
	"os"

	"locallab/internal/core"
	"locallab/internal/engine"
	"locallab/internal/measure"
	"locallab/internal/solver"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paddedtower:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	// Π₂ on a balanced instance (base √N-sized, gadgets √N-sized),
	// through the same registry entries lcl-run and lcl-scenario execute.
	eng := engine.New(engine.Options{Workers: 2, Shards: 8})
	var rows [][]string
	var described bool
	for _, name := range []string{"pi2-det", "pi2-rand"} {
		entry, ok := solver.ByName(name)
		if !ok {
			return fmt.Errorf("solver %q missing from the registry", name)
		}
		o, err := entry.Run(solver.Request{Family: solver.PaddedFamily, N: 64, Seed: 9, Engine: eng})
		if err != nil {
			return err
		}
		if !described {
			fmt.Fprintln(w, core.DescribeInstance(o.Instance.Pads[0]))
			fmt.Fprintln(w)
			described = true
		}
		d := o.Padded
		inner := 0
		if d.InnerCost != nil {
			inner = d.InnerCost.Rounds()
		}
		rows = append(rows, []string{
			entry.Name, fmt.Sprint(inner), fmt.Sprint(d.Dilation),
			fmt.Sprint(d.PsiRadius), fmt.Sprint(o.Rounds),
			fmt.Sprint(o.Stats.Rounds), fmt.Sprint(o.Stats.Deliveries), "verified",
		})
	}
	fmt.Fprintln(w, measure.Table(
		[]string{"Π₂ solver", "inner T", "dilation d", "Ψ radius", "analytic rounds", "engine rounds", "deliveries", "status"}, rows))

	// Π₃: one more padding level (kept small; the instance is the square
	// of the square). The top layer runs on the engine; the inner padded
	// level recurses sequentially (see ROADMAP for the full tower).
	lvl3, err := core.NewLevel(3)
	if err != nil {
		return err
	}
	det3, _, err := lvl3.EngineSolvers(eng)
	if err != nil {
		return err
	}
	inst3, err := core.BuildInstance(3, core.InstanceOptions{BaseNodes: 6, Seed: 2, GadgetHeight: 2})
	if err != nil {
		return err
	}
	out3, cost3, err := det3.Solve(inst3.G, inst3.In, 1)
	if err != nil {
		return err
	}
	if err := lvl3.Verify(inst3.G, inst3.In, out3); err != nil {
		return fmt.Errorf("Π₃ verification failed: %w", err)
	}
	fmt.Fprintf(w, "\nΠ₃ instance: N=%d (level-2 virtual graph inside), solved in %d rounds (%d measured on the engine), verified recursively\n",
		inst3.G.NumNodes(), cost3.Rounds(), det3.LastStats.Rounds())

	return nil
}
