// Paddedtower: build the paper's headline objects — the padded problems
// Π₂ and Π₃ of Theorem 11 — on balanced worst-case instances, solve them
// deterministically and randomized, verify the solutions against the Π′
// constraints of Section 3.3, and print the cost decomposition
// T(Π, √N)·d(√N) of Theorem 1.
package main

import (
	"fmt"
	"os"

	"locallab/internal/core"
	"locallab/internal/measure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paddedtower:", err)
		os.Exit(1)
	}
}

func run() error {
	// Π₂ on a balanced instance: base √N-sized, gadgets √N-sized.
	lvl2, err := core.NewLevel(2)
	if err != nil {
		return err
	}
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 64, Seed: 9, Balanced: true})
	if err != nil {
		return err
	}
	pad := inst.Pads[0]
	fmt.Println(core.DescribeInstance(pad))
	fmt.Println()

	var rows [][]string
	for _, solver := range []interface {
		Name() string
	}{lvl2.Det, lvl2.Rand} {
		s := solver.(*core.PaddedSolver)
		d, err := s.SolveDetailed(inst.G, inst.In, 3)
		if err != nil {
			return err
		}
		if err := lvl2.Verify(inst.G, inst.In, d.Out); err != nil {
			return fmt.Errorf("%s: verification failed: %w", s.Name(), err)
		}
		inner := 0
		if d.InnerCost != nil {
			inner = d.InnerCost.Rounds()
		}
		rows = append(rows, []string{
			s.Name(), fmt.Sprint(inner), fmt.Sprint(d.Dilation),
			fmt.Sprint(d.PsiRadius), fmt.Sprint(d.Cost.Rounds()), "verified",
		})
	}
	fmt.Println(measure.Table(
		[]string{"Π₂ solver", "inner T", "dilation d", "Ψ radius", "total rounds", "status"}, rows))

	// Π₃: one more padding level (kept small; the instance is the
	// square of the square).
	lvl3, err := core.NewLevel(3)
	if err != nil {
		return err
	}
	inst3, err := core.BuildInstance(3, core.InstanceOptions{BaseNodes: 6, Seed: 2, GadgetHeight: 2})
	if err != nil {
		return err
	}
	out3, cost3, err := lvl3.Det.Solve(inst3.G, inst3.In, 1)
	if err != nil {
		return err
	}
	if err := lvl3.Verify(inst3.G, inst3.In, out3); err != nil {
		return fmt.Errorf("Π₃ verification failed: %w", err)
	}
	fmt.Printf("\nΠ₃ instance: N=%d (level-2 virtual graph inside), solved in %d rounds, verified recursively\n",
		inst3.G.NumNodes(), cost3.Rounds())

	return nil
}
