package locallab_test

// One benchmark per paper artifact (figures 1-8, Theorems 1/6/11, plus
// the DESIGN.md ablations), each regenerating its table at quick scale,
// plus micro-benchmarks of the load-bearing primitives. Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the recorded paper-vs-measured comparison.

import (
	"testing"

	"locallab/internal/coloring"
	"locallab/internal/core"
	"locallab/internal/engine"
	"locallab/internal/errorproof"
	"locallab/internal/experiments"
	"locallab/internal/gadget"
	"locallab/internal/graph"
	"locallab/internal/lcl"
	"locallab/internal/scenario"
	"locallab/internal/sinkless"
	"locallab/internal/twin"
)

func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if r.Table == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1Landscape(b *testing.B)       { benchExperiment(b, experiments.Fig1Landscape) }
func BenchmarkFig2Padding(b *testing.B)         { benchExperiment(b, experiments.Fig2Padding) }
func BenchmarkFig3SinklessCheck(b *testing.B)   { benchExperiment(b, experiments.Fig3SinklessChecker) }
func BenchmarkFig4PortMapping(b *testing.B)     { benchExperiment(b, experiments.Fig4PortMapping) }
func BenchmarkFig5SubGadget(b *testing.B)       { benchExperiment(b, experiments.Fig5SubGadget) }
func BenchmarkFig6Gadget(b *testing.B)          { benchExperiment(b, experiments.Fig6Gadget) }
func BenchmarkFig7ColorProof(b *testing.B)      { benchExperiment(b, experiments.Fig7ColorProof) }
func BenchmarkFig8ChainProof(b *testing.B)      { benchExperiment(b, experiments.Fig8ChainProof) }
func BenchmarkThm1Transform(b *testing.B)       { benchExperiment(b, experiments.Thm1Transform) }
func BenchmarkThm6GadgetFamily(b *testing.B)    { benchExperiment(b, experiments.Thm6GadgetFamily) }
func BenchmarkThm11Hierarchy(b *testing.B)      { benchExperiment(b, experiments.Thm11Hierarchy) }
func BenchmarkAblationBalance(b *testing.B)     { benchExperiment(b, experiments.AblationBalance) }
func BenchmarkAblationRandRepair(b *testing.B)  { benchExperiment(b, experiments.AblationRandRepair) }
func BenchmarkDiscussionNetDecomp(b *testing.B) { benchExperiment(b, experiments.DiscussionNetDecomp) }
func BenchmarkLowerBoundWitness(b *testing.B)   { benchExperiment(b, experiments.LowerBoundWitness) }
func BenchmarkAblationDoubling(b *testing.B)    { benchExperiment(b, experiments.AblationDoubling) }
func BenchmarkAblationMessages(b *testing.B)    { benchExperiment(b, experiments.AblationMessageProtocol) }

// Micro-benchmarks of the primitives behind the experiments.

func BenchmarkSinklessDet2048(b *testing.B) {
	g, err := graph.NewRandomRegular(2048, 3, 5, false)
	if err != nil {
		b.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	s := sinkless.NewDetSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(g, in, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSinklessRand2048(b *testing.B) {
	g, err := graph.NewRandomRegular(2048, 3, 5, false)
	if err != nil {
		b.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	s := sinkless.NewRandSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(g, in, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCVSolve2048 drives the Cole–Vishkin solver end to end on a
// 2048-cycle — since the typed-core rewrite this is the unboxed cvMsg
// plane; the remaining allocs/op are the per-Solve setup (machines,
// labeling, cost), not the round loop, which the AllocsPerRun pins in
// internal/coloring hold at zero. (The engine-only round-loop numbers
// are BenchmarkCVEngine*2048 in internal/coloring.)
func BenchmarkCVSolve2048(b *testing.B) {
	g, err := graph.NewCycle(2048, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	s := coloring.NewCVSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(g, in, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSinklessMsg2048 drives the message-passing sinkless protocol
// through the sharded engine — since the typed-core rewrite this is the
// unboxed smMsg plane; like BenchmarkCVSolve2048, steady-state rounds
// allocate nothing and the reported allocs/op are per-Solve setup.
func BenchmarkSinklessMsg2048(b *testing.B) {
	g, err := graph.NewRandomRegular(2048, 3, 5, false)
	if err != nil {
		b.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	s := sinkless.NewMessageSolver()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(g, in, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGadgetVerifier(b *testing.B) {
	gd, err := gadget.BuildUniform(3, 7)
	if err != nil {
		b.Fatal(err)
	}
	vf := &errorproof.Verifier{Delta: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vf.Run(gd.G, gd.In, gd.NumNodes()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaddedSolveLevel2(b *testing.B) {
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 32, Seed: 3, Balanced: true})
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewPaddedSolver(sinkless.NewDetSolver(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Solve(inst.G, inst.In, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnginePaddedSolveLevel2 is the engine-backed counterpart of
// BenchmarkPaddedSolveLevel2: the same Lemma-4 pipeline, but with Ψ
// computed by the fixpoint message machines and every simulated inner
// round realized as d+1 physical engine rounds. It does strictly more
// work than the oracle (it executes the message plane the analytical
// accounting only charges for), so the interesting numbers are the
// scaling across workers, not the comparison against the oracle.
func BenchmarkEnginePaddedSolveLevel2(b *testing.B) {
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 32, Seed: 3, Balanced: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			s := core.NewEnginePaddedSolver(sinkless.NewDetSolver(), 3,
				engine.New(engine.Options{Workers: workers}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Solve(inst.G, inst.In, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVerifyPaddedLevel2(b *testing.B) {
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 32, Seed: 3, Balanced: true})
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewPaddedSolver(sinkless.NewDetSolver(), 3)
	out, _, err := s.Solve(inst.G, inst.In, 0)
	if err != nil {
		b.Fatal(err)
	}
	prime := core.NewPiPrime(sinkless.Problem{}, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.VerifyPadded(inst.G, prime, inst.In, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCyclePotential(b *testing.B) {
	g, err := graph.NewRandomRegular(4096, 3, 7, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.CyclePotential(60)
	}
}

func BenchmarkBallGathering(b *testing.B) {
	g, err := graph.NewRandomRegular(8192, 3, 9, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BallAround(graph.NodeID(i%g.NumNodes()), 8)
	}
}

// BenchmarkAutoscaleMixedGrid is the cost-twin acceptance benchmark: the
// autoscale-mixed builtin grid (one engine-backed solver, cell sizes
// spanning two orders of magnitude) under the static split versus the
// twin-driven adaptive split, at the same total worker budget
// (GOMAXPROCS). Statically, the grid layer is the only parallel one, so
// the huge cells run on single-worker engines and dominate the
// makespan; the autoscaler gives exactly those cells the engine workers
// the twin prices as worthwhile. The win only materializes with cores
// to split (compare the sub-benchmarks on a multi-core runner — the
// nightly CI job records the ratio); the report bytes are identical
// either way, which TestAutoscaleByteIdentity pins.
func BenchmarkAutoscaleMixedGrid(b *testing.B) {
	spec, ok := scenario.Builtin("autoscale-mixed")
	if !ok {
		b.Fatal("autoscale-mixed builtin missing")
	}
	tw, err := twin.LoadFile("TWIN_0.json")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts scenario.RunOptions
	}{
		{"static", scenario.RunOptions{}},
		{"autoscale", scenario.RunOptions{Autoscale: true, Twin: tw}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := scenario.Run(spec, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
