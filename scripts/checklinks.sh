#!/usr/bin/env bash
# checklinks.sh — verify that every relative markdown link in the given
# files points at an existing file or directory, and that every heading
# anchor (#fragment, on the same file or a linked markdown file)
# resolves to a real heading. External (http/https/mailto) links are
# skipped. Exits non-zero listing every broken link or anchor. Used by
# the CI docs job:
#
#   scripts/checklinks.sh *.md docs/*.md
set -u
fail=0

# slugs_of FILE — one GitHub-style anchor slug per heading: lowercase,
# punctuation stripped (keep alnum, space, underscore, dash), spaces to
# dashes. Mirrors GitHub's anchor generation closely enough for ASCII
# headings; duplicate-heading "-1" suffixes are not modeled.
slugs_of() {
  grep -E '^#{1,6} ' "$1" 2>/dev/null |
    sed -E 's/^#{1,6} +//' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

# has_anchor FILE ANCHOR — succeeds when FILE has a heading slugging to
# ANCHOR.
has_anchor() {
  slugs_of "$1" | grep -qxF "$2"
}

for f in "$@"; do
  if [ ! -f "$f" ]; then
    echo "checklinks: no such file: $f" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$f")
  # Extract ](target) occurrences, one per line, tolerating several
  # links per line.
  targets=$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')
  while IFS= read -r t; do
    [ -z "$t" ] && continue
    case "$t" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path=${t%%#*}
    anchor=""
    case "$t" in
      *'#'*) anchor=${t#*#} ;;
    esac
    if [ -n "$path" ] && [ ! -e "$dir/$path" ]; then
      echo "checklinks: $f: broken link -> $t" >&2
      fail=1
      continue
    fi
    if [ -n "$anchor" ]; then
      if [ -z "$path" ]; then
        anchor_file=$f
      else
        anchor_file="$dir/$path"
      fi
      case "$anchor_file" in
        *.md)
          if ! has_anchor "$anchor_file" "$anchor"; then
            echo "checklinks: $f: broken anchor -> $t (no heading #$anchor in $anchor_file)" >&2
            fail=1
          fi
          ;;
      esac
    fi
  done <<EOF
$targets
EOF
done
if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "checklinks: all relative links and anchors resolve"
