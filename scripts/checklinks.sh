#!/usr/bin/env bash
# checklinks.sh — verify that every relative markdown link in the given
# files points at an existing file or directory. External (http/https/
# mailto) links and pure #anchors are skipped; a trailing #anchor on a
# relative link is stripped before the existence check. Exits non-zero
# listing every broken link. Used by the CI docs job:
#
#   scripts/checklinks.sh README.md docs/*.md
set -u
fail=0
for f in "$@"; do
  if [ ! -f "$f" ]; then
    echo "checklinks: no such file: $f" >&2
    fail=1
    continue
  fi
  dir=$(dirname "$f")
  # Extract ](target) occurrences, one per line, tolerating several
  # links per line.
  targets=$(grep -o '](\([^)]*\))' "$f" | sed 's/^](//; s/)$//')
  while IFS= read -r t; do
    [ -z "$t" ] && continue
    case "$t" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${t%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "checklinks: $f: broken link -> $t" >&2
      fail=1
    fi
  done <<EOF
$targets
EOF
done
if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "checklinks: all relative links resolve"
