// Package locallab is a LOCAL-model laboratory for locally checkable
// labeling problems (LCLs). It reproduces "How much does randomness help
// with locally checkable problems?" (Balliu, Brandt, Olivetti, Suomela;
// PODC 2020): the padding transform that turns the exponential
// deterministic/randomized gap of sinkless orientation into the first
// known *polynomial* gaps — LCLs Πᵢ with deterministic complexity
// Θ(logⁱ n) and randomized complexity Θ(logⁱ⁻¹ n · log log n).
//
// The facade re-exports the library's main entry points; the
// implementation lives in the internal packages:
//
//	internal/graph       bounded-degree multigraph substrate
//	internal/local       LOCAL-model simulator (views + message passing)
//	internal/lcl         the ne-LCL formalism and checker
//	internal/sinkless    sinkless orientation (Π₁) and its two solvers
//	internal/coloring    Figure-1 baselines (Cole–Vishkin, MIS, ...)
//	internal/gadget      the (log, Δ)-gadget family (Section 4)
//	internal/errorproof  the error-proof LCL Ψ, verifier V, and its engine machines (§4.4–4.6)
//	internal/core        padded problems Π′, sequential + engine solvers, hierarchy (§3, §5)
//	internal/solver      the unified solver registry consumed by every tool
//	internal/measure     sweeps, growth fitting, tables
//	internal/experiments one experiment per paper figure/theorem
//
// Quick start:
//
//	g, _ := locallab.NewRandomRegular(512, 3, 42, false)
//	in := locallab.NewLabeling(g)
//	out, cost, _ := locallab.NewSinklessDetSolver().Solve(g, in, 0)
//	err := locallab.Verify(g, locallab.SinklessOrientation(), in, out)
//	fmt.Println(cost.Rounds(), err)
package locallab

import (
	"locallab/internal/coloring"
	"locallab/internal/core"
	"locallab/internal/errorproof"
	"locallab/internal/gadget"
	"locallab/internal/graph"
	"locallab/internal/lcl"
	"locallab/internal/local"
	"locallab/internal/measure"
	"locallab/internal/sinkless"
)

// Structural substrate.
type (
	// Graph is a bounded-degree multigraph with port numbering;
	// self-loops, parallel edges, and disconnected graphs are allowed,
	// as the paper's model requires.
	Graph = graph.Graph
	// Builder assembles graphs.
	Builder = graph.Builder
	// NodeID, EdgeID and Half address nodes, edges and half-edges.
	NodeID = graph.NodeID
	// EdgeID addresses edges.
	EdgeID = graph.EdgeID
	// Half addresses a node-edge pair (an element of B).
	Half = graph.Half
)

// LCL formalism.
type (
	// Label is one input or output label.
	Label = lcl.Label
	// Labeling assigns labels to nodes, edges and half-edges.
	Labeling = lcl.Labeling
	// Problem is a node-edge-checkable LCL.
	Problem = lcl.Problem
	// Solver computes outputs with LOCAL-model round accounting.
	Solver = lcl.Solver
	// Cost tracks per-node charged locality.
	Cost = local.Cost
)

// Padding machinery (the paper's contribution).
type (
	// PiPrime is the padded problem Π′ of Section 3.3.
	PiPrime = core.PiPrime
	// PaddedSolver is the Lemma-4 algorithm (sequential oracle).
	PaddedSolver = core.PaddedSolver
	// EnginePaddedSolver is the Lemma-4 algorithm executing as
	// message-passing machines on the sharded engine.
	EnginePaddedSolver = core.EnginePaddedSolver
	// PaddedInstance is a graph from the family G(G) of Definition 3.
	PaddedInstance = core.PaddedInstance
	// PadOptions configures padded-instance construction.
	PadOptions = core.PadOptions
	// HierarchyLevel bundles Πᵢ with its solvers (Theorem 11).
	HierarchyLevel = core.Level
	// Gadget is a member of the (log, Δ)-gadget family.
	Gadget = gadget.Gadget
	// GadgetVerifier is the O(log n) error-proof verifier V.
	GadgetVerifier = errorproof.Verifier
)

// Graph generators.
var (
	// NewCycle builds C_n.
	NewCycle = graph.NewCycle
	// NewPath builds P_n.
	NewPath = graph.NewPath
	// NewRandomRegular builds a random d-regular (multi)graph.
	NewRandomRegular = graph.NewRandomRegular
	// NewBitrevTree builds the deterministic hard family for sinkless
	// orientation.
	NewBitrevTree = graph.NewBitrevTree
	// NewTorus builds the 2D torus.
	NewTorus = graph.NewTorus
	// NewHypercube builds the d-dimensional hypercube.
	NewHypercube = graph.NewHypercube
)

// NewLabeling allocates an empty labeling for g.
func NewLabeling(g *Graph) *Labeling { return lcl.NewLabeling(g) }

// Verify runs the distributed ne-LCL checker.
func Verify(g *Graph, p Problem, in, out *Labeling) error { return lcl.Verify(g, p, in, out) }

// SinklessOrientation returns the Π₁ problem (Figure 3).
func SinklessOrientation() Problem { return sinkless.Problem{} }

// NewSinklessDetSolver returns the deterministic Θ(log n)-shaped solver.
func NewSinklessDetSolver() Solver { return sinkless.NewDetSolver() }

// NewSinklessRandSolver returns the randomized Θ(log log n)-shaped solver.
func NewSinklessRandSolver() Solver { return sinkless.NewRandSolver() }

// ThreeColoringCycles returns the Θ(log* n) baseline problem.
func ThreeColoringCycles() Problem { return coloring.Three{} }

// NewColeVishkinSolver returns the Cole–Vishkin cycle 3-coloring solver
// running on the goroutine-per-node synchronous runtime.
func NewColeVishkinSolver() Solver { return coloring.NewCVSolver() }

// NewGadget builds a (log, Δ)-family gadget with uniform sub-gadget
// heights.
func NewGadget(delta, height int) (*Gadget, error) { return gadget.BuildUniform(delta, height) }

// ValidateGadget checks the Section 4.2/4.3 structure constraints.
func ValidateGadget(g *Graph, in *Labeling, delta int) error { return gadget.Validate(g, in, delta) }

// NewPadded builds a padded instance per Definition 3.
func NewPadded(base *Graph, baseIn *Labeling, opts PadOptions) (*PaddedInstance, error) {
	return core.BuildPadded(base, baseIn, opts)
}

// NewHierarchyLevel returns the Πᵢ machinery of Theorem 11.
func NewHierarchyLevel(i int) (*HierarchyLevel, error) { return core.NewLevel(i) }

// NewHierarchyInstance builds a Πᵢ worst-case instance (Lemma 5 balance
// with Balanced: true).
func NewHierarchyInstance(level int, opts core.InstanceOptions) (*core.Instance, error) {
	return core.BuildInstance(level, opts)
}

// VerifyPadded validates a Π′ output end to end, recursing through
// hierarchy levels.
func VerifyPadded(g *Graph, p *PiPrime, in, out *Labeling) error {
	return core.VerifyPadded(g, p, in, out)
}

// BestFit fits measured rounds against the paper's growth classes.
var BestFit = measure.BestFit

// Sweep measures a solver across instance sizes.
var Sweep = measure.Sweep
