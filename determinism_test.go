package locallab_test

// Determinism integration tests: identical seeds must yield identical
// outputs through the entire stack — any hidden map-iteration
// nondeterminism in the solvers would break replayability of the
// experiments recorded in EXPERIMENTS.md.

import (
	"testing"

	"locallab/internal/coloring"
	"locallab/internal/core"
	"locallab/internal/engine"
	"locallab/internal/graph"
	"locallab/internal/lcl"
	"locallab/internal/scenario"
	"locallab/internal/sinkless"
)

func TestDeterministicSolverReplays(t *testing.T) {
	g, err := graph.NewRandomRegular(256, 3, 17, false)
	if err != nil {
		t.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	first, cost1, err := sinkless.NewDetSolver().Solve(g, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, cost2, err := sinkless.NewDetSolver().Solve(g, in, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !lcl.Equal(first, again) {
			t.Fatal("deterministic solver output changed across runs")
		}
		if cost1.Rounds() != cost2.Rounds() {
			t.Fatal("deterministic solver cost changed across runs")
		}
	}
}

func TestRandomizedSolverSeedReplays(t *testing.T) {
	g, err := graph.NewRandomRegular(256, 3, 23, false)
	if err != nil {
		t.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	a, _, err := sinkless.NewRandSolver().Solve(g, in, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := sinkless.NewRandSolver().Solve(g, in, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !lcl.Equal(a, b) {
		t.Fatal("same seed produced different randomized outputs")
	}
	c, _, err := sinkless.NewRandSolver().Solve(g, in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lcl.Equal(a, c) {
		t.Fatal("different seeds produced identical outputs (suspicious)")
	}
}

// shardedConfigs is the engine grid the equivalence property tests sweep:
// from a single worker on a single shard up to heavy oversharding.
var shardedConfigs = []engine.Options{
	{Workers: 1, Shards: 1},
	{Workers: 2, Shards: 5},
	{Workers: 4, Shards: 16},
	{Workers: 8, Shards: 64},
	{}, // package defaults (GOMAXPROCS workers)
}

// TestShardedEngineMatchesSequentialSinkless is the property test of the
// engine rewrite: on random 3-regular graphs, the message-passing
// sinkless solver must produce byte-identical labelings on the sharded
// worker-pool engine and on the sequential reference oracle, for every
// master seed, graph size, and worker/shard configuration.
func TestShardedEngineMatchesSequentialSinkless(t *testing.T) {
	sizes := []int{64, 128, 256}
	seeds := []int64{1, 2, 3, 4, 5}
	for _, n := range sizes {
		for _, seed := range seeds {
			g, err := graph.NewRandomRegular(n, 3, seed*31+int64(n), false)
			if err != nil {
				t.Fatal(err)
			}
			in := lcl.NewLabeling(g)
			oracle := &sinkless.MessageSolver{MaxRounds: 4096, Engine: engine.New(engine.Options{Sequential: true})}
			want, wantCost, err := oracle.Solve(g, in, seed)
			if err != nil {
				t.Fatalf("n=%d seed=%d: oracle: %v", n, seed, err)
			}
			for _, opts := range shardedConfigs {
				s := &sinkless.MessageSolver{MaxRounds: 4096, Engine: engine.New(opts)}
				got, cost, err := s.Solve(g, in, seed)
				if err != nil {
					t.Fatalf("n=%d seed=%d %+v: %v", n, seed, opts, err)
				}
				if !lcl.Equal(want, got) {
					t.Fatalf("n=%d seed=%d %+v: sharded labeling differs from sequential oracle", n, seed, opts)
				}
				if cost.Rounds() != wantCost.Rounds() {
					t.Fatalf("n=%d seed=%d %+v: rounds %d, want %d", n, seed, opts, cost.Rounds(), wantCost.Rounds())
				}
			}
		}
	}
}

// TestShardedEngineMatchesSequentialColoring is the deterministic-solver
// counterpart: Cole–Vishkin 3-coloring on cycles through the same engine
// grid.
func TestShardedEngineMatchesSequentialColoring(t *testing.T) {
	sizes := []int{33, 100, 257}
	seeds := []int64{1, 2, 3, 4, 5}
	for _, n := range sizes {
		for _, seed := range seeds {
			g, err := graph.NewCycle(n, seed)
			if err != nil {
				t.Fatal(err)
			}
			in := lcl.NewLabeling(g)
			oracle := &coloring.CVSolver{MaxRounds: 1 << 20, Engine: engine.New(engine.Options{Sequential: true})}
			want, _, err := oracle.Solve(g, in, seed)
			if err != nil {
				t.Fatalf("n=%d seed=%d: oracle: %v", n, seed, err)
			}
			if err := lcl.Verify(g, coloring.Three{}, in, want); err != nil {
				t.Fatalf("n=%d seed=%d: oracle output invalid: %v", n, seed, err)
			}
			for _, opts := range shardedConfigs {
				s := &coloring.CVSolver{MaxRounds: 1 << 20, Engine: engine.New(opts)}
				got, _, err := s.Solve(g, in, seed)
				if err != nil {
					t.Fatalf("n=%d seed=%d %+v: %v", n, seed, opts, err)
				}
				if !lcl.Equal(want, got) {
					t.Fatalf("n=%d seed=%d %+v: sharded coloring differs from sequential oracle", n, seed, opts)
				}
			}
		}
	}
}

// TestShardedEngineMatchesSequentialMIS closes the typed-machine trio:
// the MIS solver's coloring stage runs the unboxed Cole–Vishkin machine
// on the typed sharded core, and its labelings must stay byte-identical
// to the boxed sequential oracle across the same seed × size × geometry
// grid.
func TestShardedEngineMatchesSequentialMIS(t *testing.T) {
	sizes := []int{33, 100, 257}
	seeds := []int64{1, 2, 3, 4, 5}
	for _, n := range sizes {
		for _, seed := range seeds {
			g, err := graph.NewCycle(n, seed)
			if err != nil {
				t.Fatal(err)
			}
			in := lcl.NewLabeling(g)
			oracle := &coloring.MISSolver{Engine: engine.New(engine.Options{Sequential: true})}
			want, _, err := oracle.Solve(g, in, seed)
			if err != nil {
				t.Fatalf("n=%d seed=%d: oracle: %v", n, seed, err)
			}
			if err := lcl.Verify(g, coloring.MIS{}, in, want); err != nil {
				t.Fatalf("n=%d seed=%d: oracle output invalid: %v", n, seed, err)
			}
			for _, opts := range shardedConfigs {
				s := &coloring.MISSolver{Engine: engine.New(opts)}
				got, _, err := s.Solve(g, in, seed)
				if err != nil {
					t.Fatalf("n=%d seed=%d %+v: %v", n, seed, opts, err)
				}
				if !lcl.Equal(want, got) {
					t.Fatalf("n=%d seed=%d %+v: sharded MIS differs from sequential oracle", n, seed, opts)
				}
			}
		}
	}
}

// TestScenarioReportReplays extends the determinism suite to the
// scenario subsystem: the full declarative pipeline — spec → family
// builders → solvers → report — must emit byte-identical canonical JSON
// across runs and grid worker counts.
func TestScenarioReportReplays(t *testing.T) {
	spec := &scenario.Spec{Name: "determinism", Scenarios: []scenario.Scenario{
		{Name: "msg", Family: "regular", Solver: "sinkless-msg",
			Sizes: []int{64, 128}, Seeds: []int64{3, 4},
			Engine: scenario.EngineParams{Workers: 2, Shards: 8}},
		{Name: "cv", Family: "cycle-advid", Solver: "cole-vishkin",
			Sizes: []int{65}, Seeds: []int64{1}},
	}}
	var first []byte
	for _, workers := range []int{1, 4, 1} {
		rep, err := scenario.Run(spec, scenario.RunOptions{GridWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
			continue
		}
		if string(data) != string(first) {
			t.Fatalf("workers=%d: scenario report bytes changed", workers)
		}
	}
}

// TestPaddedEngineScenarioReplays is the padded counterpart of the
// scenario determinism suite: the padded-engine builtin — the whole
// Lemma-4 pipeline as Ψ fixpoint machines plus dilated simulation
// sessions on the sharded engine — must emit byte-identical canonical
// JSON across 1/2/4 grid workers, and every cell must report the engine's
// message deliveries.
func TestPaddedEngineScenarioReplays(t *testing.T) {
	spec, ok := scenario.Builtin("padded-engine")
	if !ok {
		t.Fatal("padded-engine builtin missing")
	}
	var first []byte
	for _, workers := range []int{1, 2, 4} {
		rep, err := scenario.Run(spec, scenario.RunOptions{GridWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, sr := range rep.Scenarios {
			for _, c := range sr.Cells {
				if c.Messages <= 0 {
					t.Fatalf("workers=%d: padded cell %s n=%d seed=%d reports no engine deliveries",
						workers, sr.Name, c.N, c.Seed)
				}
			}
		}
		data, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = data
			continue
		}
		if string(data) != string(first) {
			t.Fatalf("workers=%d: padded-engine report bytes changed", workers)
		}
	}
}

// TestEnginePaddedSolverReplays pins the engine-backed hierarchy solver
// into the root determinism suite: byte-identical labelings to the
// sequential Lemma-4 oracle on the same instance and seed.
func TestEnginePaddedSolverReplays(t *testing.T) {
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 16, Seed: 5, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := core.NewLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := lvl.Det.Solve(inst.G, inst.In, 7)
	if err != nil {
		t.Fatal(err)
	}
	det, _, err := lvl.EngineSolvers(engine.New(engine.Options{Workers: 4, Shards: 16}))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := det.Solve(inst.G, inst.In, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !lcl.Equal(want, got) {
		t.Fatal("engine-backed padded labeling differs from the sequential oracle")
	}
}

func TestPaddedPipelineReplays(t *testing.T) {
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 16, Seed: 5, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := core.NewLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := lvl.Det.Solve(inst.G, inst.In, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := lvl.Det.Solve(inst.G, inst.In, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !lcl.Equal(a, b) {
		t.Fatal("padded pipeline output changed across runs")
	}
	// Instance construction itself replays.
	inst2, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 16, Seed: 5, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(inst.G, inst2.G) {
		t.Fatal("instance construction changed across runs")
	}
	if !lcl.Equal(inst.In, inst2.In) {
		t.Fatal("instance inputs changed across runs")
	}
}
