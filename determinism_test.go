package locallab_test

// Determinism integration tests: identical seeds must yield identical
// outputs through the entire stack — any hidden map-iteration
// nondeterminism in the solvers would break replayability of the
// experiments recorded in EXPERIMENTS.md.

import (
	"testing"

	"locallab/internal/core"
	"locallab/internal/graph"
	"locallab/internal/lcl"
	"locallab/internal/sinkless"
)

func TestDeterministicSolverReplays(t *testing.T) {
	g, err := graph.NewRandomRegular(256, 3, 17, false)
	if err != nil {
		t.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	first, cost1, err := sinkless.NewDetSolver().Solve(g, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, cost2, err := sinkless.NewDetSolver().Solve(g, in, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !lcl.Equal(first, again) {
			t.Fatal("deterministic solver output changed across runs")
		}
		if cost1.Rounds() != cost2.Rounds() {
			t.Fatal("deterministic solver cost changed across runs")
		}
	}
}

func TestRandomizedSolverSeedReplays(t *testing.T) {
	g, err := graph.NewRandomRegular(256, 3, 23, false)
	if err != nil {
		t.Fatal(err)
	}
	in := lcl.NewLabeling(g)
	a, _, err := sinkless.NewRandSolver().Solve(g, in, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := sinkless.NewRandSolver().Solve(g, in, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !lcl.Equal(a, b) {
		t.Fatal("same seed produced different randomized outputs")
	}
	c, _, err := sinkless.NewRandSolver().Solve(g, in, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lcl.Equal(a, c) {
		t.Fatal("different seeds produced identical outputs (suspicious)")
	}
}

func TestPaddedPipelineReplays(t *testing.T) {
	inst, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 16, Seed: 5, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := core.NewLevel(2)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := lvl.Det.Solve(inst.G, inst.In, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := lvl.Det.Solve(inst.G, inst.In, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !lcl.Equal(a, b) {
		t.Fatal("padded pipeline output changed across runs")
	}
	// Instance construction itself replays.
	inst2, err := core.BuildInstance(2, core.InstanceOptions{BaseNodes: 16, Seed: 5, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(inst.G, inst2.G) {
		t.Fatal("instance construction changed across runs")
	}
	if !lcl.Equal(inst.In, inst2.In) {
		t.Fatal("instance inputs changed across runs")
	}
}
